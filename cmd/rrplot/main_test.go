package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRunAllTargets(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "all"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []string{"fig5.dat", "fig5.gp", "fig6-rr.dat", "fig6.gp", "fig7.dat", "fig7.gp"}
	for _, name := range want {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}

func TestFig5DataShape(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "fig5"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.dat"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + one row per default variant.
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "#") {
		t.Fatal("missing header comment")
	}
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("bad row %q", line)
		}
	}
}

func TestFig7DataMonotone(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "fig7"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.dat"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few rows:\n%s", data)
	}
	var prevP float64
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 5 {
			t.Fatalf("bad row %q", line)
		}
		vals := make([]float64, 5)
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			vals[i] = v
		}
		p, model, padhye, sack, rr := vals[0], vals[1], vals[2], vals[3], vals[4]
		if p <= prevP {
			t.Fatalf("loss rates not increasing at %q", line)
		}
		if model <= 0 || padhye <= 0 || sack < 0 || rr < 0 {
			t.Fatalf("implausible values in %q", line)
		}
		prevP = p
	}
}

func TestRunUnknownTarget(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "fig9"}); err == nil {
		t.Fatal("unknown target accepted")
	}
}
