// Command rrplot regenerates the paper's figures as gnuplot-ready data
// files plus matching .gp scripts, for readers who want real plots
// instead of rrsim's ASCII rendering.
//
// Usage:
//
//	rrplot [-out dir] [fig5|fig6|fig7|all]
//
// Then: cd <dir> && gnuplot fig7.gp (produces fig7.png), etc.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rrtcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrplot:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rrplot", flag.ContinueOnError)
	out := fs.String("out", "plots", "output directory for .dat/.gp files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	target := "all"
	if fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	switch target {
	case "fig5":
		return writeFig5(*out)
	case "fig6":
		return writeFig6(*out)
	case "fig7":
		return writeFig7(*out)
	case "all":
		if err := writeFig5(*out); err != nil {
			return err
		}
		if err := writeFig6(*out); err != nil {
			return err
		}
		return writeFig7(*out)
	default:
		return fmt.Errorf("unknown target %q (want fig5|fig6|fig7|all)", target)
	}
}

func writeFile(dir, name, content string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

// writeFig5 emits grouped-bar data: variant, goodput at 3 and 6 drops.
func writeFig5(dir string) error {
	var b strings.Builder
	b.WriteString("# variant goodput3drops_kbps goodput6drops_kbps\n")
	res3, err := rrtcp.RunFigure5(rrtcp.Figure5Config{Drops: 3})
	if err != nil {
		return err
	}
	res6, err := rrtcp.RunFigure5(rrtcp.Figure5Config{Drops: 6})
	if err != nil {
		return err
	}
	for _, row3 := range res3.Rows {
		row6, _ := res6.Row(row3.Variant)
		fmt.Fprintf(&b, "%s %.1f %.1f\n", row3.Variant, row3.GoodputBps/1000, row6.GoodputBps/1000)
	}
	if err := writeFile(dir, "fig5.dat", b.String()); err != nil {
		return err
	}
	gp := `set terminal png size 800,500
set output 'fig5.png'
set title 'Figure 5: effective throughput under burst loss'
set style data histograms
set style histogram clustered gap 1
set style fill solid 0.8 border -1
set ylabel 'goodput (Kbps)'
set yrange [0:*]
plot 'fig5.dat' using 2:xtic(1) title '3 drops', '' using 3 title '6 drops'
`
	return writeFile(dir, "fig5.gp", gp)
}

// writeFig6 emits one sequence-plot series per variant.
func writeFig6(dir string) error {
	res, err := rrtcp.RunFigure6(rrtcp.Figure6Config{Seeds: []int64{42}})
	if err != nil {
		return err
	}
	var plots []string
	for _, p := range res.Panels {
		var b strings.Builder
		b.WriteString("# time_s packet_number\n")
		for _, pt := range p.Flow0Seq {
			fmt.Fprintf(&b, "%.6f %.0f\n", pt.X, pt.Y)
		}
		name := fmt.Sprintf("fig6-%s.dat", p.Variant)
		if err := writeFile(dir, name, b.String()); err != nil {
			return err
		}
		plots = append(plots, fmt.Sprintf("'%s' using 1:2 with points pt 7 ps 0.4 title '%s'", name, p.Variant))
	}
	gp := fmt.Sprintf(`set terminal png size 900,500
set output 'fig6.png'
set title 'Figure 6: first flow under RED gateways'
set xlabel 'time (s)'
set ylabel 'packet number'
plot %s
`, strings.Join(plots, ", \\\n     "))
	return writeFile(dir, "fig6.gp", gp)
}

// writeFig7 emits measured windows per variant plus the two model curves.
func writeFig7(dir string) error {
	res, err := rrtcp.RunFigure7(rrtcp.Figure7Config{
		Duration: 60 * time.Second,
		Seeds:    []int64{1, 2},
	})
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("# p model_sqrt padhye sack_window rr_window\n")
	for _, p := range res.Config.LossRates {
		sack, _ := res.Point(rrtcp.SACK, p)
		rr, _ := res.Point(rrtcp.RR, p)
		fmt.Fprintf(&b, "%.4f %.2f %.2f %.2f %.2f\n",
			p, sack.ModelWindow, sack.PadhyeWindow, sack.Window, rr.Window)
	}
	if err := writeFile(dir, "fig7.dat", b.String()); err != nil {
		return err
	}
	gp := `set terminal png size 800,500
set output 'fig7.png'
set title 'Figure 7: fitness to the square-root model'
set xlabel 'packet loss rate p'
set ylabel 'window = BW*RTT/MSS (packets)'
set logscale x
plot 'fig7.dat' using 1:2 with lines title 'C/sqrt(p)', \
     'fig7.dat' using 1:3 with lines title 'Padhye', \
     'fig7.dat' using 1:4 with linespoints title 'SACK', \
     'fig7.dat' using 1:5 with linespoints title 'RR'
`
	return writeFile(dir, "fig7.gp", gp)
}
