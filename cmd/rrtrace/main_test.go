package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rrtcp/internal/telemetry"
)

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatalf("read: %v", err)
	}
	return buf.String(), runErr
}

// writeLog synthesizes a small event log with one full RR recovery
// episode and a queue drop.
func writeLog(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	sink := telemetry.NewNDJSONSink(f)
	for _, ev := range []telemetry.Event{
		{At: 0, Comp: telemetry.CompSender, Kind: telemetry.KSend, Flow: 0},
		{At: 500 * time.Millisecond, Comp: telemetry.CompSender, Kind: telemetry.KCwnd, Flow: 0, A: 8},
		{At: 900 * time.Millisecond, Comp: telemetry.CompQueue, Kind: telemetry.KDrop, Src: "fwd", Flow: 0, A: 8, B: 1},
		{At: time.Second, Comp: telemetry.CompRR, Kind: telemetry.KRecoveryEnter, Flow: 0, A: 13, B: 6.5},
		{At: 1200 * time.Millisecond, Comp: telemetry.CompRR, Kind: telemetry.KRetreatProbe, Flow: 0, A: 4},
		{At: 1500 * time.Millisecond, Comp: telemetry.CompRR, Kind: telemetry.KRecoveryExit, Flow: 0, A: 5},
		{At: 2 * time.Second, Comp: telemetry.CompSender, Kind: telemetry.KFlowDone, Flow: 0},
	} {
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return path
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus", writeLog(t)}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"summary"}); err == nil {
		t.Fatal("missing path accepted")
	}
	if err := run([]string{"summary", "/does/not/exist.ndjson"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
}

func TestSummary(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"summary", writeLog(t)}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"7 events", "episodes", "fwd", "exit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestFilterByComp(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"filter", "-comp", "rr", writeLog(t)})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("filtered lines = %d, want 3:\n%s", len(lines), out)
	}
	// Output must itself be decodable NDJSON.
	recs, err := telemetry.DecodeNDJSON(strings.NewReader(out))
	if err != nil {
		t.Fatalf("filter output not valid NDJSON: %v", err)
	}
	if recs[0].Kind != "recovery-enter" {
		t.Fatalf("first filtered kind = %q", recs[0].Kind)
	}
}

func TestFilterByKindAndTime(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"filter", "-kind", "drop", "-from", "0.5", "-to", "1.0", writeLog(t)})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	recs, err := telemetry.DecodeNDJSON(strings.NewReader(out))
	if err != nil || len(recs) != 1 || recs[0].Src != "fwd" {
		t.Fatalf("filter wrong: recs=%+v err=%v", recs, err)
	}
}

func TestTimeline(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"timeline", "-flow", "0", "-width", "40", "-height", "8", writeLog(t)})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"flow 0", "phase:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestStdinInput(t *testing.T) {
	data, err := os.ReadFile(writeLog(t))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	oldIn := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = oldIn }()
	go func() {
		w.Write(data)
		w.Close()
	}()
	out, err := capture(t, func() error { return run([]string{"summary", "-"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "7 events") {
		t.Fatalf("stdin summary wrong:\n%s", out)
	}
}

// A log with torn or corrupt lines (a crashed run, a partial flush)
// must still summarize: bad lines are skipped with a stderr warning,
// good ones survive — but the command exits non-zero so scripts can
// tell the answer came from a damaged log.
func TestMalformedLinesSkippedWithWarning(t *testing.T) {
	good, err := os.ReadFile(writeLog(t))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(good)), "\n")
	mangled := []string{
		lines[0],
		`{"t":"not a number"}`,
		lines[1],
		`{"truncated`,
		"not json at all",
	}
	mangled = append(mangled, lines[2:]...)
	path := filepath.Join(t.TempDir(), "mangled.ndjson")
	if err := os.WriteFile(path, []byte(strings.Join(mangled, "\n")+"\n"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	oldErr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stderr = w
	out, runErr := capture(t, func() error { return run([]string{"summary", path}) })
	os.Stderr = oldErr
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var errBuf bytes.Buffer
	if _, err := errBuf.ReadFrom(r); err != nil {
		t.Fatalf("read stderr: %v", err)
	}
	if runErr == nil {
		t.Fatal("damaged log exited zero")
	}
	if !strings.Contains(runErr.Error(), "skipped 3 malformed line(s)") {
		t.Fatalf("error does not report the skip count: %v", runErr)
	}
	if !strings.Contains(out, "7 events") {
		t.Fatalf("summary lost good events:\n%s", out)
	}
	if warn := errBuf.String(); !strings.Contains(warn, "skipped 3 malformed line(s)") {
		t.Fatalf("missing skip warning, got: %q", warn)
	}
}

func TestSpansCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"spans", writeLog(t)}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"segment 0", "conn flow=0", "recovery flow=0", "retreat", "probe", "exit_cwnd=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("spans output missing %q:\n%s", want, out)
		}
	}
}

func TestExportChrome(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	_, err := capture(t, func() error {
		return run([]string{"export", "-format", "chrome", "-out", path, writeLog(t)})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if !strings.Contains(string(data), `"recovery"`) {
		t.Fatalf("trace missing recovery span:\n%s", data)
	}
}

func TestExportCSVToStdout(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"export", "-format", "csv", writeLog(t)})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(out, "seg,comp,src,flow,t,value\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
}

func TestExportUnknownFormat(t *testing.T) {
	if err := run([]string{"export", "-format", "yaml", writeLog(t)}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
