// Command rrtrace inspects NDJSON event logs produced by
// rrsim -events (or any telemetry.NDJSONSink).
//
// Usage:
//
//	rrtrace summary <events.ndjson>
//	    Per-flow counters, recovery episodes (retreat/probe durations,
//	    further losses, exit window), and per-queue drop counts.
//
//	rrtrace flows [-exemplars k] [-seed n] <events.ndjson>
//	    Replay the stream through the flow-analytics table and print the
//	    aggregate flow report: per-variant FCT quantiles, goodput,
//	    retransmission load, and windowed Jain fairness — the same table
//	    a live run serves at /flows.
//
//	rrtrace filter [-flow n] [-comp c] [-kind k] [-from s] [-to s] <events.ndjson>
//	    Re-emit matching records as NDJSON, e.g. for piping into jq.
//
//	rrtrace timeline [-flow n] [-width n] [-height n] <events.ndjson>
//	    ASCII plot of one flow's cwnd/actnum with a recovery-phase strip.
//
//	rrtrace spans <events.ndjson>
//	    Assemble and print the span tree: connection lifetimes, recovery
//	    episodes with retreat/probe sub-phases, queue busy periods.
//
//	rrtrace export [-format chrome|csv] [-out file] <events.ndjson>
//	    Export spans + sampled series as Chrome trace-event JSON
//	    (openable in Perfetto) or the sampled series as CSV.
//
// A path of "-" reads from stdin. If any input lines were malformed the
// command still runs, but reports the skip count and exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"rrtcp/internal/telemetry"
	"rrtcp/internal/telemetry/flowstats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rrtrace {summary|flows|filter|timeline|spans|export} [flags] <events.ndjson>")
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	flow := fs.Int("flow", -1, "restrict to one flow id (filter/timeline; timeline default 0)")
	comp := fs.String("comp", "", "restrict to a component, e.g. rr, sender, queue (filter)")
	kind := fs.String("kind", "", "restrict to an event kind, e.g. drop, recovery-enter (filter)")
	from := fs.Float64("from", 0, "discard records before this time in seconds (filter)")
	to := fs.Float64("to", 0, "discard records after this time in seconds; 0 = unbounded (filter)")
	width := fs.Int("width", 72, "plot width in columns (timeline)")
	height := fs.Int("height", 16, "plot height in rows (timeline)")
	format := fs.String("format", "chrome", "export format: chrome (trace-event JSON) or csv (sampled series)")
	out := fs.String("out", "-", "export output path; - writes to stdout (export)")
	exemplars := fs.Int("exemplars", 0, "reservoir of exemplar flows to track while replaying (flows)")
	seed := fs.Int64("seed", 0, "reservoir-sampling seed (flows)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rrtrace %s [flags] <events.ndjson>", cmd)
	}
	records, stats, err := load(fs.Arg(0))
	if err != nil {
		return err
	}

	switch cmd {
	case "summary":
		fmt.Print(telemetry.Summarize(records).Render())
	case "flows":
		table := flowstats.FromRecords(records, flowstats.Config{
			Exemplars: *exemplars,
			Seed:      *seed,
		})
		fmt.Print(table.Report().Render())
	case "filter":
		opts := telemetry.FilterOpts{
			Comp: *comp,
			Kind: *kind,
			From: *from,
			To:   *to,
		}
		if *flow >= 0 {
			opts.Flow = int32(*flow)
			opts.FlowSet = true
		}
		enc := json.NewEncoder(os.Stdout)
		for _, r := range telemetry.Filter(records, opts) {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
	case "timeline":
		id := int32(0)
		if *flow >= 0 {
			id = int32(*flow)
		}
		fmt.Print(telemetry.Timeline(records, id, *width, *height))
	case "spans":
		fmt.Print(telemetry.RenderSpans(telemetry.AssembleSpans(records)))
	case "export":
		if err := export(records, *format, *out); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}

	// Partial input partially answered: the command's output stands,
	// but the exit code must not pretend the log was whole.
	if stats.Skipped > 0 {
		return fmt.Errorf("skipped %d malformed line(s) of %d (first: %v)",
			stats.Skipped, stats.Lines, stats.FirstErr)
	}
	return nil
}

func export(records []telemetry.Record, format, out string) error {
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "chrome":
		return telemetry.WriteChromeTrace(w,
			telemetry.AssembleSpans(records), telemetry.AssembleSeries(records))
	case "csv":
		return telemetry.WriteSeriesCSV(w, telemetry.AssembleSeries(records))
	default:
		return fmt.Errorf("unknown export format %q (want chrome or csv)", format)
	}
}

func load(path string) ([]telemetry.Record, telemetry.DecodeStats, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, telemetry.DecodeStats{}, err
		}
		defer f.Close()
		r = f
	}
	// Event streams from crashed or truncated runs routinely end in a
	// torn line; decode leniently, skip what doesn't parse, and report
	// the damage (run leaves the final say to the exit code).
	records, stats, err := telemetry.DecodeNDJSONLenient(r)
	if err != nil {
		return nil, stats, err
	}
	if stats.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "rrtrace: skipped %d malformed line(s) of %d (first: %v)\n",
			stats.Skipped, stats.Lines, stats.FirstErr)
	}
	return records, stats, nil
}
