package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rrtcp"
)

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatalf("read: %v", err)
	}
	return buf.String(), runErr
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"fig5", "-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunFig5Text(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"fig5", "-drops", "3"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Figure 5", "tahoe", "rr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig5JSON(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"fig5", "-json"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var decoded struct {
		Rows []struct {
			Variant    string  `json:"variant"`
			GoodputBps float64 `json:"goodputBps"`
			Finished   bool    `json:"finished"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(decoded.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(decoded.Rows))
	}
	for _, row := range decoded.Rows {
		if !row.Finished || row.GoodputBps <= 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
}

func TestRunFairShareText(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"fairshare"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "drr") || !strings.Contains(out, "fifo") {
		t.Fatalf("output missing disciplines:\n%s", out)
	}
}

func TestRunAblationText(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"ablation"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "rr (published)") {
		t.Fatalf("output missing published row:\n%s", out)
	}
}

func TestRunFig7Quick(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"fig7", "-quick"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "square-root") {
		t.Fatalf("output missing title:\n%s", out)
	}
}

func TestRunScenarioSubcommand(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/s.json"
	spec := `{"duration":"10s","flows":[{"kind":"rr","packets":50,"window":18}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := capture(t, func() error { return run([]string{"run", path}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "rr") || !strings.Contains(out, "fwd") {
		t.Fatalf("scenario output wrong:\n%s", out)
	}
}

func TestRunScenarioMissingArg(t *testing.T) {
	if err := run([]string{"run"}); err == nil {
		t.Fatal("missing scenario path accepted")
	}
}

func TestRunScenarioJSON(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/s.json"
	spec := `{"duration":"5s","flows":[{"kind":"newreno","packets":20,"window":18}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := capture(t, func() error { return run([]string{"run", "-json", path}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep struct {
		Flows []struct {
			Kind     string `json:"kind"`
			Finished bool   `json:"finished"`
		} `json:"flows"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(rep.Flows) != 1 || !rep.Flows[0].Finished {
		t.Fatalf("report wrong: %+v", rep)
	}
}

func TestRunExampleScenarios(t *testing.T) {
	for _, f := range []string{"burstloss.json", "red-contention.json", "twoway-fairqueue.json"} {
		f := f
		t.Run(f, func(t *testing.T) {
			if _, err := capture(t, func() error {
				return run([]string{"run", "../../examples/scenarios/" + f})
			}); err != nil {
				t.Fatalf("example scenario %s failed: %v", f, err)
			}
		})
	}
}

func TestRunScenarioTraceExport(t *testing.T) {
	dir := t.TempDir()
	spec := dir + "/s.json"
	csvOut := dir + "/trace.csv"
	if err := os.WriteFile(spec,
		[]byte(`{"duration":"5s","flows":[{"kind":"rr","packets":20,"window":18}]}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"run", "-trace", csvOut, spec})
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(csvOut)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if !strings.HasPrefix(string(data), "time_s,event,seq,value") {
		t.Fatalf("trace header wrong: %.60s", data)
	}
	if !strings.Contains(string(data), "send") {
		t.Fatal("trace contains no send events")
	}
}

func TestRunFig5EventsExport(t *testing.T) {
	dir := t.TempDir()
	events := dir + "/events.ndjson"
	if _, err := capture(t, func() error {
		return run([]string{"fig5", "-variants", "rr", "-events", events})
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatalf("events file: %v", err)
	}
	out := string(data)
	for _, want := range []string{
		`"kind":"recovery-enter"`,
		`"kind":"retreat-probe"`,
		`"kind":"recovery-exit"`,
		`"comp":"loss"`,
		`"src":"fwd"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("event log missing %s", want)
		}
	}
	// Each line must be standalone JSON.
	for i, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid: %v", i+1, err)
		}
	}
}

func TestRunScenarioEventsExport(t *testing.T) {
	dir := t.TempDir()
	spec := dir + "/s.json"
	events := dir + "/events.ndjson"
	if err := os.WriteFile(spec,
		[]byte(`{"duration":"10s","loss":{"drops":[{"flow":0,"packets":[60,61,63]}]},`+
			`"flows":[{"kind":"rr","packets":150,"window":18}]}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"run", "-events", events, spec})
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatalf("events file: %v", err)
	}
	if !strings.Contains(string(data), `"kind":"recovery-enter"`) {
		t.Fatal("scenario event log missing recovery events")
	}
}

func TestRunFig5TraceOut(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/trace.json"
	if _, err := capture(t, func() error {
		return run([]string{"fig5", "-variants", "rr", "-trace-out", trace})
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if err := rrtcp.ValidateChromeTrace(data); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	out := string(data)
	// Spans land as B/E slices; sampled gauges as counter tracks.
	for _, want := range []string{`"recovery"`, `"probe"`, `"ph":"C"`, "cwnd"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s", want)
		}
	}
}

func TestRunScenarioTraceOut(t *testing.T) {
	dir := t.TempDir()
	spec := dir + "/s.json"
	trace := dir + "/trace.json"
	if err := os.WriteFile(spec,
		[]byte(`{"duration":"10s","loss":{"drops":[{"flow":0,"packets":[60,61]}]},`+
			`"flows":[{"kind":"rr","packets":150,"window":18}]}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"run", "-trace-out", trace, spec})
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if err := rrtcp.ValidateChromeTrace(data); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	// -trace-out switches the scenario sampler on, so counters exist.
	if !strings.Contains(string(data), `"ph":"C"`) {
		t.Fatal("scenario trace has no counter samples")
	}
}

func TestRunPprofProfiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := capture(t, func() error {
		return run([]string{"fig5", "-variants", "rr", "-pprof", dir})
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(dir + "/" + name)
		if err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", name)
		}
	}
}

func TestRunSmoothStartSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"smoothstart"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "smooth-start") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunsFlagAliasMatches(t *testing.T) {
	// -n is a deprecated alias for -runs; both must configure the same
	// sweep and therefore produce identical output.
	canonical, err := capture(t, func() error {
		return run([]string{"chaos", "-runs", "2", "-seed", "7"})
	})
	if err != nil {
		t.Fatalf("run -runs: %v", err)
	}
	alias, err := capture(t, func() error {
		return run([]string{"chaos", "-n", "2", "-seed", "7"})
	})
	if err != nil {
		t.Fatalf("run -n: %v", err)
	}
	if canonical != alias {
		t.Fatalf("-runs and -n outputs differ:\n--- -runs ---\n%s\n--- -n ---\n%s", canonical, alias)
	}
}

func TestRunParallelOutputIdentical(t *testing.T) {
	// The CLI contract behind -parallel: any worker count yields the
	// same bytes on stdout as sequential execution.
	seq, err := capture(t, func() error {
		return run([]string{"fig5", "-json", "-parallel", "1"})
	})
	if err != nil {
		t.Fatalf("run -parallel 1: %v", err)
	}
	par, err := capture(t, func() error {
		return run([]string{"fig5", "-json", "-parallel", "4"})
	})
	if err != nil {
		t.Fatalf("run -parallel 4: %v", err)
	}
	if seq != par {
		t.Fatal("fig5 -parallel 4 output differs from -parallel 1")
	}
}

func TestRunBurstySubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"bursty", "-json"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var res struct {
		Points []struct {
			Variant     string  `json:"variant"`
			BurstLength float64 `json:"burstLength"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
}

// TestRunCheckpointResume drives the crash-recovery workflow end to
// end through the CLI: checkpoint a chaos sweep, chop the journal to
// simulate a mid-run kill, resume, and demand stdout byte-identical to
// an uninterrupted run.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	args := []string{"chaos", "-runs", "1", "-seed", "3", "-bytes", "50000", "-horizon", "30s", "-parallel", "2"}

	baseline, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	full, err := capture(t, func() error { return run(append(args, "-checkpoint", ckpt)) })
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if full != baseline {
		t.Fatal("checkpointing changed the output")
	}

	// Simulate a kill partway through: keep only the first few journal
	// records (plus a torn final line, the usual crash scar).
	matches, err := filepath.Glob(filepath.Join(ckpt, "sweep-chaos-*", "journal.ndjson"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("journal glob: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte{'\n'})
	if len(lines) < 5 {
		t.Fatalf("journal has %d records, want more to truncate meaningfully", len(lines))
	}
	torn := append(bytes.Join(lines[:3], nil), lines[3][:len(lines[3])/2]...)
	if err := os.WriteFile(matches[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := capture(t, func() error {
		return run(append(args, "-checkpoint", ckpt, "-resume"))
	})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed != baseline {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
			baseline, resumed)
	}
}

func TestRunResumeRequiresCheckpoint(t *testing.T) {
	if err := run([]string{"fig5", "-resume"}); err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("got %v, want an error demanding -checkpoint", err)
	}
}

// TestRunProgressEventsNDJSON pins the -progress-events flag: the
// sweep lifecycle stream lands in its own NDJSON file (where rrtrace
// summary reads retries and stalls from), not in stdout.
func TestRunProgressEventsNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ndjson")
	if _, err := capture(t, func() error {
		return run([]string{"chaos", "-runs", "1", "-bytes", "50000", "-horizon", "30s", "-progress-events", path})
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"sweep-start"`, `"sweep-job"`, `"sweep-done"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Fatalf("progress-events stream missing %s:\n%.400s", want, data)
		}
	}
}
