package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func stressArgs(extra ...string) []string {
	return append([]string{
		"stress", "-cells", "2", "-flows", "6", "-horizon", "3s", "-bytes", "15000",
	}, extra...)
}

func TestRunStressText(t *testing.T) {
	out, err := capture(t, func() error { return run(stressArgs()) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Stress soak", "2 cells x 6 flows", "total:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStressBudgetTripDegradesCleanly(t *testing.T) {
	runOnce := func() string {
		out, err := capture(t, func() error {
			return run(stressArgs("-budget-events", "800"))
		})
		if err != nil {
			t.Fatalf("a tripped budget must degrade, not fail the command: %v", err)
		}
		return out
	}
	out := runOnce()
	if !strings.Contains(out, "degraded:events") || !strings.Contains(out, "DEGRADED cell") {
		t.Fatalf("output missing the degradation report:\n%s", out)
	}
	if out != runOnce() {
		t.Fatal("two identically seeded budget-tripped runs rendered different reports")
	}
}

func TestRunStressJSON(t *testing.T) {
	out, err := capture(t, func() error {
		return run(stressArgs("-json", "-budget-events", "800"))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var decoded struct {
		Cells []struct {
			Events   uint64 `json:"events"`
			Degraded string `json:"degraded"`
		} `json:"cells"`
		Degraded []struct {
			Resource string `json:"resource"`
		} `json:"degraded"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(decoded.Cells) != 2 || len(decoded.Degraded) != 2 {
		t.Fatalf("got %d cells / %d degraded, want 2/2", len(decoded.Cells), len(decoded.Degraded))
	}
	for _, c := range decoded.Cells {
		if c.Degraded != "events" || c.Events != 800 {
			t.Fatalf("bad cell %+v", c)
		}
	}
}

func TestProgressEventsWriteFailureSurfaces(t *testing.T) {
	// /dev/full accepts the open and fails every write with ENOSPC —
	// exactly the failure mode the exit path must surface.
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	_, err := capture(t, func() error {
		return run([]string{"fig5", "-drops", "1", "-progress-events", "/dev/full"})
	})
	if err == nil {
		t.Fatal("progress-events written to a full device, but run reported success")
	}
	if !strings.Contains(err.Error(), "progress-events") {
		t.Fatalf("error %v does not identify the -progress-events stream", err)
	}
}
