// Command rrsim regenerates the tables and figures of "Robust TCP
// Congestion Recovery" (Wang & Shin, ICDCS 2001).
//
// Usage:
//
//	rrsim fig5 [-drops n]     Figure 5: drop-tail burst-loss throughput
//	rrsim fig6 [-seed n]      Figure 6: RED-gateway sequence traces
//	rrsim fig7 [-quick]       Figure 7: square-root-model fitness
//	rrsim table5              Table 5: fairness matrix
//	rrsim ackloss             §2.3 ACK-loss robustness sweep
//	rrsim fairshare           §2.3 fair-share gateways (FIFO vs DRR)
//	rrsim twoway              two-way traffic extension
//	rrsim smoothstart         slow-start overshoot vs Smooth-start [21]
//	rrsim bursty              Gilbert-Elliott correlated-loss sweep
//	rrsim run <file.json>     run a user-defined scenario (see examples/scenarios)
//	rrsim ablation [-drops n] RR design-choice ablations
//	rrsim chaos [-n n]        seeded-random fault sweep under invariant checking
//	rrsim chaos -replay f     replay a violation repro bundle
//	rrsim all [-quick]        everything above
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rrtcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf(
			"usage: rrsim {fig5|fig6|fig7|table5|ackloss|fairshare|twoway|smoothstart|bursty|ablation|chaos|run|all} [flags]")
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	drops := fs.Int("drops", 3, "packets lost within one window (fig5/ablation)")
	seed := fs.Int64("seed", 0, "simulation seed (0 = experiment default)")
	quick := fs.Bool("quick", false, "smaller sweeps for fast runs (fig7/all)")
	variants := fs.String("variants", "", "comma-separated variant list (fig5), e.g. tahoe,rr,fack")
	delack := fs.Bool("delack", false, "run receivers with delayed ACKs (fig7)")
	traceOut := fs.String("trace", "", "write flow 0's event trace as CSV to this file (run)")
	events := fs.String("events", "", "stream structured telemetry as NDJSON to this file, for rrtrace (fig5/run)")
	metrics := fs.Bool("metrics", false, "print the aggregated metrics snapshot to stderr (fig5/run)")
	asJSON := fs.Bool("json", false, "emit the result as JSON instead of a table")
	schedules := fs.Int("n", 100, "number of random fault schedules (chaos)")
	bytes := fs.Int64("bytes", 0, "per-flow transfer size in bytes (chaos, 0 = default)")
	horizon := fs.Duration("horizon", 0, "per-run simulated-time bound (chaos, 0 = default)")
	bundles := fs.String("bundles", "", "directory for violation repro bundles (chaos)")
	replay := fs.String("replay", "", "replay a repro bundle instead of sweeping (chaos)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	emit := renderText
	if *asJSON {
		emit = renderJSON
	}

	switch cmd {
	case "fig5":
		return runFigure5(emit, *drops, *seed, *variants, *events, *metrics)
	case "fig6":
		return runFigure6(emit, *seed)
	case "fig7":
		return runFigure7(emit, *quick, *delack)
	case "table5":
		return runTable5(emit, *seed)
	case "ackloss":
		return runAckLoss(emit)
	case "fairshare":
		return runFairShare(emit)
	case "twoway":
		return runTwoWay(emit)
	case "smoothstart":
		return runSmoothStart(emit)
	case "bursty":
		return runBursty(emit)
	case "run":
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: rrsim run [-json] [-trace out.csv] [-events out.ndjson] [-metrics] <scenario.json>")
		}
		return runScenario(emit, fs.Arg(0), *traceOut, *events, *metrics)
	case "ablation":
		return runAblation(emit, *drops)
	case "chaos":
		if *replay != "" {
			return runChaosReplay(*replay)
		}
		return runChaos(emit, *schedules, *seed, *variants, *bytes, *horizon, *bundles)
	case "all":
		for _, d := range []int{3, 6} {
			if err := runFigure5(emit, d, *seed, *variants, "", false); err != nil {
				return err
			}
		}
		if err := runFigure6(emit, *seed); err != nil {
			return err
		}
		if err := runFigure7(emit, *quick, *delack); err != nil {
			return err
		}
		if err := runTable5(emit, *seed); err != nil {
			return err
		}
		if err := runAckLoss(emit); err != nil {
			return err
		}
		if err := runFairShare(emit); err != nil {
			return err
		}
		if err := runTwoWay(emit); err != nil {
			return err
		}
		if err := runSmoothStart(emit); err != nil {
			return err
		}
		if err := runBursty(emit); err != nil {
			return err
		}
		return runAblation(emit, *drops)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// renderer emits one experiment result.
type renderer func(rendered string, result any) error

func renderText(rendered string, _ any) error {
	fmt.Println(rendered)
	return nil
}

func renderJSON(_ string, result any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}

func runFigure5(emit renderer, drops int, seed int64, variants, events string, metrics bool) error {
	cfg := rrtcp.Figure5Config{Drops: drops, Seed: seed}
	if variants != "" {
		for _, name := range strings.Split(variants, ",") {
			kind, err := rrtcp.ParseKind(name)
			if err != nil {
				return err
			}
			cfg.Variants = append(cfg.Variants, kind)
		}
	}
	bus, finish, err := telemetrySetup(events, metrics)
	if err != nil {
		return err
	}
	cfg.Telemetry = bus
	res, err := rrtcp.RunFigure5(cfg)
	if ferr := finish(); err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}

// telemetrySetup builds the bus behind -events and -metrics. The
// returned finish func flushes the NDJSON stream and prints the metrics
// snapshot; it must run even when the experiment fails.
func telemetrySetup(eventsPath string, metrics bool) (*rrtcp.TelemetryBus, func() error, error) {
	if eventsPath == "" && !metrics {
		return nil, func() error { return nil }, nil
	}
	var sinks []rrtcp.TelemetrySink
	var nd *rrtcp.NDJSONSink
	var f *os.File
	if eventsPath != "" {
		var err error
		f, err = os.Create(eventsPath)
		if err != nil {
			return nil, nil, err
		}
		nd = rrtcp.NewNDJSONSink(f)
		sinks = append(sinks, nd)
	}
	var ms *rrtcp.MetricsSink
	if metrics {
		ms = rrtcp.NewMetricsSink()
		sinks = append(sinks, ms)
	}
	finish := func() error {
		var err error
		if nd != nil {
			err = nd.Close()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if ms != nil {
			fmt.Fprint(os.Stderr, ms.R.Snapshot())
		}
		return err
	}
	return rrtcp.NewTelemetryBus(sinks...), finish, nil
}

func runFigure6(emit renderer, seed int64) error {
	res, err := rrtcp.RunFigure6(rrtcp.Figure6Config{Seed: seed})
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}

func runFigure7(emit renderer, quick, delack bool) error {
	cfg := rrtcp.Figure7Config{DelayedAck: delack}
	if quick {
		cfg.LossRates = []float64{0.001, 0.01, 0.05, 0.1}
		cfg.Duration = 30 * time.Second
		cfg.Seeds = []int64{1}
	}
	res, err := rrtcp.RunFigure7(cfg)
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}

func runTable5(emit renderer, seed int64) error {
	res, err := rrtcp.RunTable5(rrtcp.Table5Config{Seed: seed})
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}

func runAckLoss(emit renderer) error {
	res, err := rrtcp.RunAckLoss(rrtcp.AckLossConfig{})
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}

func runFairShare(emit renderer) error {
	res, err := rrtcp.RunFairShare(rrtcp.FairShareConfig{})
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}

func runTwoWay(emit renderer) error {
	res, err := rrtcp.RunTwoWay(rrtcp.TwoWayConfig{})
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}

func runSmoothStart(emit renderer) error {
	res, err := rrtcp.RunSmoothStart(rrtcp.SmoothStartConfig{})
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}

func runBursty(emit renderer) error {
	res, err := rrtcp.RunBursty(rrtcp.BurstyConfig{})
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}

func runScenario(emit renderer, path, traceOut, events string, metrics bool) error {
	spec, err := rrtcp.LoadScenarioFile(path)
	if err != nil {
		return err
	}
	bus, finish, err := telemetrySetup(events, metrics)
	if err != nil {
		return err
	}
	spec.Telemetry = bus
	var rep *rrtcp.ScenarioReport
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			finish()
			return err
		}
		rep, err = spec.RunWithTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if ferr := finish(); err == nil {
			err = ferr
		}
		if err != nil {
			return err
		}
	} else {
		rep, err = spec.Run()
		if ferr := finish(); err == nil {
			err = ferr
		}
		if err != nil {
			return err
		}
	}
	return emit(rep.RenderText(), rep)
}

func runChaos(emit renderer, schedules int, seed int64, variants string, bytes int64, horizon time.Duration, bundles string) error {
	cfg := rrtcp.ChaosConfig{
		Schedules: schedules,
		Seed:      seed,
		Bytes:     bytes,
		Horizon:   horizon,
		BundleDir: bundles,
	}
	if variants != "" {
		for _, name := range strings.Split(variants, ",") {
			kind, err := rrtcp.ParseKind(name)
			if err != nil {
				return err
			}
			cfg.Variants = append(cfg.Variants, kind)
		}
	}
	res, err := rrtcp.RunChaos(cfg)
	if err != nil {
		return err
	}
	if err := emit(res.Render(), res); err != nil {
		return err
	}
	if n := res.Violated(); n > 0 {
		return fmt.Errorf("chaos: %d invariant violation(s)", n)
	}
	return nil
}

func runChaosReplay(path string) error {
	b, err := rrtcp.LoadChaosBundle(path)
	if err != nil {
		return err
	}
	out, err := rrtcp.ReplayChaosBundle(b)
	if err != nil {
		return err
	}
	fmt.Printf("bundle %s reproduced:\n  case: %s seed=%d\n  violation: %s\n  (%d violations total, finished=%v)\n",
		path, b.Case.Variant, b.Case.Seed, out.Violations[0], len(out.Violations), out.Finished)
	return nil
}

func runAblation(emit renderer, drops int) error {
	res, err := rrtcp.RunAblation(drops)
	if err != nil {
		return err
	}
	return emit(res.Render(), res)
}
