// Command rrsim regenerates the tables and figures of "Robust TCP
// Congestion Recovery" (Wang & Shin, ICDCS 2001).
//
// Every experiment is a named entry in the rrtcp experiment registry;
// rrsim derives its dispatch table and usage text from it:
//
//	rrsim fig5 [-drops n]        Figure 5: drop-tail burst-loss throughput
//	rrsim fig6 [-seed n]         Figure 6: RED-gateway sequence traces
//	rrsim fig7 [-quick]          Figure 7: square-root-model fitness
//	rrsim table5                 Table 5: fairness matrix
//	rrsim ackloss                §2.3 ACK-loss robustness sweep
//	rrsim fairshare              §2.3 fair-share gateways (FIFO vs DRR)
//	rrsim twoway                 two-way traffic extension
//	rrsim smoothstart            slow-start overshoot vs Smooth-start [21]
//	rrsim bursty                 Gilbert-Elliott correlated-loss sweep
//	rrsim ablation [-drops n]    RR design-choice ablations
//	rrsim chaos [-runs n]        seeded-random fault sweep under invariant checking
//	rrsim chaos -replay f        replay a violation repro bundle
//	rrsim stress [-cells n]      overload soak: many-flow cells under chaos and budgets
//	rrsim run <file.json>        run a user-defined scenario (see examples/scenarios)
//	rrsim all [-quick]           everything above except chaos
//
// Independent runs inside an experiment fan out across a worker pool;
// -parallel bounds the pool (0 = GOMAXPROCS, 1 = sequential) and the
// output is byte-identical at any setting. -progress renders a live
// status line on stderr.
//
// Resilience flags harden long sweeps: -checkpoint DIR journals each
// completed job so a killed run can continue with -resume (the merged
// output stays byte-identical to an uninterrupted run); -job-timeout
// bounds a job's wall-clock time; -retries re-runs transiently failed
// jobs (timeouts, panics) with capped exponential backoff; -stall-after
// reports hung jobs on stderr and /progress; -progress-events writes
// the sweep lifecycle stream (including stalls and retries) as NDJSON
// for rrtrace summary. SIGINT/SIGTERM shut down gracefully — dispatch
// stops, in-flight jobs drain, the journal and telemetry sinks flush —
// and a second signal aborts immediately.
//
// Overload guardrails (stress, and any budget-aware run): -budget-events,
// -budget-wall, and -budget-heap arm per-cell resource budgets; a cell
// that trips one degrades into a reported outcome instead of failing or
// OOMing the sweep. -cells and -flows size the stress soak.
//
// Observability flags shared by the experiments and scenario runs:
// -events streams structured telemetry as NDJSON (for rrtrace),
// -trace-out assembles the same stream into spans + sampled series and
// writes Chrome trace-event JSON openable in Perfetto, -metrics prints
// the aggregated metrics snapshot, and -pprof writes cpu.pprof and
// heap.pprof runtime profiles of the simulator itself.
//
// Flow-scale analytics (fig5, chaos, stress): -flow-stats folds every
// flow's lifecycle events into aggregate per-variant accounting — FCT
// quantiles, goodput, retransmission load, windowed Jain fairness —
// appended to the result as a flow report; -flow-exemplars K keeps a
// seeded reservoir of K flows in full detail; -flow-csv FILE writes the
// per-variant rows as CSV.
//
// -http :PORT serves live introspection while the run executes:
// /metrics (Prometheus text format), /progress (sweep progress as
// JSON), /flows (flow analytics as JSON), /healthz, and /debug/pprof.
// See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"rrtcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("%s", usage())
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var runs int
	fs.IntVar(&runs, "runs", 100, "independent repetitions where the experiment takes a count (chaos: fault schedules)")
	fs.IntVar(&runs, "n", 100, "deprecated alias for -runs")
	drops := fs.Int("drops", 3, "packets lost within one window (fig5/ablation)")
	seed := fs.Int64("seed", 0, "simulation seed (0 = experiment default)")
	quick := fs.Bool("quick", false, "smaller sweeps for fast runs (fig7/all)")
	variants := fs.String("variants", "", "comma-separated variant list, e.g. tahoe,rr,fack")
	delack := fs.Bool("delack", false, "run receivers with delayed ACKs (fig7)")
	traceOut := fs.String("trace", "", "write flow 0's event trace as CSV to this file (run)")
	events := fs.String("events", "", "stream structured telemetry as NDJSON to this file, for rrtrace (fig5/run)")
	metrics := fs.Bool("metrics", false, "print the aggregated metrics snapshot to stderr (fig5/run)")
	traceJSON := fs.String("trace-out", "", "write spans + sampled series as Chrome trace-event JSON (Perfetto-openable) to this file (fig5/run)")
	pprofDir := fs.String("pprof", "", "write cpu.pprof and heap.pprof runtime profiles into this directory")
	asJSON := fs.Bool("json", false, "emit the result as JSON instead of a table")
	bytes := fs.Int64("bytes", 0, "per-flow transfer size in bytes (chaos, 0 = default)")
	horizon := fs.Duration("horizon", 0, "per-run simulated-time bound (chaos, 0 = default)")
	bundles := fs.String("bundles", "", "directory for violation repro bundles (chaos)")
	replay := fs.String("replay", "", "replay a repro bundle instead of sweeping (chaos)")
	parallel := fs.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS, 1 = sequential)")
	progress := fs.Bool("progress", false, "render live sweep progress on stderr")
	httpAddr := fs.String("http", "", "serve live introspection (/metrics, /progress, /healthz, /debug/pprof) on this address, e.g. :8080")
	checkpoint := fs.String("checkpoint", "", "journal completed sweep jobs under this directory so an interrupted run can resume")
	resume := fs.Bool("resume", false, "restore jobs journaled by a previous interrupted run (requires -checkpoint)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock deadline; overruns count as transient failures (0 = off)")
	retries := fs.Int("retries", 1, "attempts per job for transient failures (timeouts, panics), with capped exponential backoff; 1 = no retry")
	stallAfter := fs.Duration("stall-after", 0, "report jobs in flight longer than this as stalled, on stderr and /progress (0 = off)")
	progressEvents := fs.String("progress-events", "", "stream sweep lifecycle events (start/job/done, stalls, retries) as NDJSON to this file, for rrtrace summary")
	cells := fs.Int("cells", 0, "independent simulation cells (stress, 0 = default)")
	flows := fs.Int("flows", 0, "concurrent flows per cell (stress, 0 = default)")
	budgetEvents := fs.Uint64("budget-events", 0, "per-cell processed-event budget; a cell exceeding it degrades (stress, 0 = off)")
	budgetWall := fs.Duration("budget-wall", 0, "per-cell wall-clock budget, sampled (stress, 0 = off)")
	budgetHeap := fs.Uint64("budget-heap", 0, "heap ceiling in bytes, sampled per cell; a cell over it degrades instead of OOMing (stress, 0 = off)")
	flowStats := fs.Bool("flow-stats", false, "fold flow lifecycle events into the aggregate flow-analytics layer; the result gains a per-variant FCT/goodput/fairness report (fig5/chaos/stress)")
	flowExemplars := fs.Int("flow-exemplars", 0, "reservoir of exemplar flows kept in full detail by -flow-stats (0 = aggregates only)")
	flowCSV := fs.String("flow-csv", "", "write the -flow-stats per-variant report as CSV to this file")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "n" {
			fmt.Fprintln(os.Stderr, "rrsim: -n is deprecated; use -runs")
		}
	})

	emit := renderText
	if *asJSON {
		emit = renderJSON
	}

	opts := rrtcp.ExperimentOptions{
		Seed:          *seed,
		Runs:          runs,
		Drops:         *drops,
		Quick:         *quick,
		DelayedAck:    *delack,
		Bytes:         *bytes,
		Horizon:       *horizon,
		BundleDir:     *bundles,
		Cells:         *cells,
		Flows:         *flows,
		MaxEvents:     *budgetEvents,
		MaxWall:       *budgetWall,
		MaxHeapBytes:  *budgetHeap,
		FlowStats:     *flowStats,
		FlowExemplars: *flowExemplars,
	}
	if *variants != "" {
		for _, name := range strings.Split(*variants, ",") {
			kind, err := rrtcp.ParseKind(name)
			if err != nil {
				return err
			}
			opts.Variants = append(opts.Variants, kind)
		}
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	runOpt := rrtcp.ExperimentRunOptions{
		Parallel:      *parallel,
		JobTimeout:    *jobTimeout,
		StallAfter:    *stallAfter,
		CheckpointDir: *checkpoint,
		Resume:        *resume,
	}
	if *retries > 1 {
		runOpt.Retry = rrtcp.SweepRetryPolicy{MaxAttempts: *retries}
	}
	if *checkpoint != "" {
		runOpt.OnCheckpoint = func(dir string, restored, skipped int) {
			if restored > 0 || skipped > 0 {
				fmt.Fprintf(os.Stderr, "rrsim: checkpoint %s: restored %d job(s), skipped %d stale record(s)\n",
					dir, restored, skipped)
			} else {
				fmt.Fprintf(os.Stderr, "rrsim: checkpointing to %s\n", dir)
			}
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the sweep
	// context — dispatch stops, in-flight jobs drain, the checkpoint
	// journal and telemetry sinks flush, the obs server shuts down — and
	// a second signal aborts immediately.
	ctx, stopSignals := signalContext()
	defer stopSignals()
	runOpt.Context = ctx

	tel := telemetryOpts{events: *events, metrics: *metrics, traceOut: *traceJSON, flowCSV: *flowCSV}
	if *flowCSV != "" && !*flowStats {
		return fmt.Errorf("-flow-csv requires -flow-stats")
	}

	// The progress bus carries sweep lifecycle events (published on the
	// coordinating goroutine); the -progress status line and the live
	// introspection sinks both subscribe to it.
	var progressSinks []rrtcp.TelemetrySink
	if *progress {
		progressSinks = append(progressSinks, rrtcp.NewProgressSink(os.Stderr))
	}
	// Sweep lifecycle events are wall-clock and completion-ordered, so
	// they get their own NDJSON file rather than polluting the
	// deterministic -events stream. The sink's write error is checked at
	// exit — a full disk must fail the run, not vanish into a warning.
	var closers []func() error
	if *progressEvents != "" {
		f, err := os.Create(*progressEvents)
		if err != nil {
			return fmt.Errorf("create -progress-events file: %w", err)
		}
		nd := rrtcp.NewNDJSONSink(f)
		closers = append(closers, func() error {
			err := nd.Close()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("flush -progress-events: %w", err)
			}
			return nil
		})
		progressSinks = append(progressSinks, nd)
	}
	if *httpAddr != "" {
		liveMetrics := rrtcp.NewMetricsSink()
		liveProgress := rrtcp.NewProgressState()
		progressSinks = append(progressSinks, liveMetrics, liveProgress)
		tel.live = liveMetrics
		var liveFlows *rrtcp.FlowTable
		if *flowStats {
			// The live table behind /flows subscribes to the shared
			// telemetry bus, filling as experiments republish per-job
			// streams (chaos/stress keep run events private-bounded and
			// surface flow analytics via the result report instead); the
			// per-job tables behind the result's flow report are separate,
			// so scraping never perturbs the deterministic output.
			liveFlows = rrtcp.NewFlowTable(rrtcp.FlowStatsConfig{
				Exemplars: *flowExemplars,
				Seed:      *seed,
				Registry:  liveMetrics.R,
			})
			tel.flows = liveFlows
		}
		srv := rrtcp.NewObsServer(liveMetrics.R, liveProgress, liveFlows)
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rrsim: introspection server on http://%s (/metrics /progress /flows /healthz /debug/pprof)\n", addr)
	}
	if len(progressSinks) > 0 {
		runOpt.Progress = rrtcp.NewTelemetryBus(progressSinks...)
	}
	do := func() error {
		switch cmd {
		case "run":
			if fs.NArg() != 1 {
				return fmt.Errorf("usage: rrsim run [-json] [-trace out.csv] [-events out.ndjson] [-trace-out out.json] [-metrics] <scenario.json>")
			}
			return runScenario(emit, fs.Arg(0), *traceOut, tel)
		case "chaos":
			if *replay != "" {
				return runChaosReplay(*replay)
			}
		case "all":
			return runAll(emit, opts, runOpt)
		}
		return runExperiment(cmd, emit, opts, runOpt, tel)
	}
	runErr := func() error {
		if *pprofDir != "" {
			return withProfiles(*pprofDir, do)
		}
		return do()
	}()
	for _, c := range closers {
		if cerr := c(); runErr == nil {
			runErr = cerr
		}
	}
	return runErr
}

// signalContext returns a context canceled by the first SIGINT or
// SIGTERM, so a sweep drains cleanly (partial results journaled,
// telemetry flushed). A second signal hard-exits with the conventional
// 128+SIGINT status. The returned stop func detaches the handler.
func signalContext() (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "\nrrsim: %v — stopping dispatch, draining in-flight jobs (interrupt again to abort)\n", sig)
		cancel(fmt.Errorf("received %v", sig))
		if sig, ok = <-ch; ok {
			fmt.Fprintf(os.Stderr, "rrsim: %v again — aborting\n", sig)
			os.Exit(130)
		}
	}()
	return ctx, func() {
		signal.Stop(ch)
		close(ch)
		cancel(nil)
	}
}

// withProfiles brackets fn with a CPU profile and snapshots the heap
// after it returns, writing cpu.pprof and heap.pprof into dir.
func withProfiles(dir string, fn func() error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return err
	}
	runErr := fn()
	pprof.StopCPUProfile()
	if err := cpu.Close(); err != nil && runErr == nil {
		runErr = err
	}
	heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		if runErr == nil {
			runErr = err
		}
		return runErr
	}
	runtime.GC() // settle the heap so the snapshot reflects live data
	if err := pprof.WriteHeapProfile(heap); err != nil && runErr == nil {
		runErr = err
	}
	if err := heap.Close(); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// usage builds the top-level help text from the experiment registry.
func usage() string {
	var b strings.Builder
	b.WriteString("usage: rrsim <experiment> [flags]\n\nexperiments:\n")
	for _, r := range rrtcp.Experiments() {
		fmt.Fprintf(&b, "  %-12s %s\n", r.Name, r.Desc)
	}
	b.WriteString("  run <file>   run a user-defined scenario (see examples/scenarios)\n")
	b.WriteString("  all          every experiment above except chaos")
	return b.String()
}

// runExperiment builds a registered experiment from the shared options,
// executes it on the sweep pool, and emits the result. Results that
// report invariant violations (chaos) turn into a non-zero exit.
func runExperiment(name string, emit renderer, opts rrtcp.ExperimentOptions,
	runOpt rrtcp.ExperimentRunOptions, tel telemetryOpts) error {
	bus, finish, err := telemetrySetup(tel)
	if err != nil {
		return err
	}
	opts.Telemetry = bus
	res, err := buildAndRun(name, opts, runOpt)
	if ferr := finish(); err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	if err := emit(res.Render(), res); err != nil {
		return err
	}
	if tel.flowCSV != "" {
		fr, ok := res.(interface{ FlowReport() rrtcp.FlowReport })
		if !ok {
			return fmt.Errorf("%s does not produce a flow report (-flow-csv)", name)
		}
		f, err := os.Create(tel.flowCSV)
		if err != nil {
			return err
		}
		err = fr.FlowReport().WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write -flow-csv: %w", err)
		}
	}
	if v, ok := res.(interface{ Violated() int }); ok {
		if n := v.Violated(); n > 0 {
			return fmt.Errorf("%s: %d invariant violation(s)", name, n)
		}
	}
	return nil
}

func buildAndRun(name string, opts rrtcp.ExperimentOptions,
	runOpt rrtcp.ExperimentRunOptions) (rrtcp.ExperimentResult, error) {
	e, err := rrtcp.BuildExperiment(name, opts)
	if err != nil {
		return nil, err
	}
	return rrtcp.RunExperiment(e, runOpt)
}

// runAll reproduces the whole evaluation: every registered experiment
// in canonical order, with fig5 at both burst sizes the paper plots.
// The chaos sweep is skipped — it is a robustness harness, not a paper
// figure.
func runAll(emit renderer, opts rrtcp.ExperimentOptions, runOpt rrtcp.ExperimentRunOptions) error {
	for _, r := range rrtcp.Experiments() {
		switch r.Name {
		case "chaos":
			continue
		case "fig5":
			for _, d := range []int{3, 6} {
				o := opts
				o.Drops = d
				res, err := buildAndRun(r.Name, o, runOpt)
				if err != nil {
					return err
				}
				if err := emit(res.Render(), res); err != nil {
					return err
				}
			}
		default:
			res, err := buildAndRun(r.Name, opts, runOpt)
			if err != nil {
				return err
			}
			if err := emit(res.Render(), res); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderer emits one experiment result.
type renderer func(rendered string, result any) error

func renderText(rendered string, _ any) error {
	fmt.Println(rendered)
	return nil
}

func renderJSON(_ string, result any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}

// telemetryOpts gathers the observability flags shared by experiment
// and scenario runs.
type telemetryOpts struct {
	events   string              // NDJSON event stream path
	metrics  bool                // print metrics snapshot to stderr
	traceOut string              // Chrome trace-event JSON path
	live     rrtcp.TelemetrySink // -http live metrics sink, also fed simulation events
	flows    *rrtcp.FlowTable    // -http live flow table behind /flows
	flowCSV  string              // -flow-csv report path
}

func (t telemetryOpts) enabled() bool {
	return t.events != "" || t.metrics || t.traceOut != "" || t.live != nil || t.flows != nil
}

// telemetrySetup builds the bus behind -events, -metrics, and
// -trace-out. The returned finish func flushes the NDJSON stream,
// writes the Chrome trace, and prints the metrics snapshot; it must run
// even when the experiment fails.
func telemetrySetup(tel telemetryOpts) (*rrtcp.TelemetryBus, func() error, error) {
	if !tel.enabled() {
		return nil, func() error { return nil }, nil
	}
	var sinks []rrtcp.TelemetrySink
	if tel.live != nil {
		sinks = append(sinks, tel.live)
	}
	if tel.flows != nil {
		sinks = append(sinks, tel.flows)
	}
	var nd *rrtcp.NDJSONSink
	var f *os.File
	if tel.events != "" {
		var err error
		f, err = os.Create(tel.events)
		if err != nil {
			return nil, nil, err
		}
		nd = rrtcp.NewNDJSONSink(f)
		sinks = append(sinks, nd)
	}
	var ms *rrtcp.MetricsSink
	if tel.metrics {
		ms = rrtcp.NewMetricsSink()
		sinks = append(sinks, ms)
	}
	var spans *rrtcp.SpanSink
	var series *rrtcp.SeriesSink
	if tel.traceOut != "" {
		spans = rrtcp.NewSpanSink()
		series = rrtcp.NewSeriesSink()
		sinks = append(sinks, spans, series)
	}
	finish := func() error {
		var err error
		if nd != nil {
			err = nd.Close()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if spans != nil {
			tf, terr := os.Create(tel.traceOut)
			if terr == nil {
				terr = rrtcp.WriteChromeTrace(tf, spans.Spans(), series.Series())
				if cerr := tf.Close(); terr == nil {
					terr = cerr
				}
			}
			if err == nil {
				err = terr
			}
		}
		if ms != nil {
			fmt.Fprint(os.Stderr, ms.R.Snapshot())
		}
		return err
	}
	return rrtcp.NewTelemetryBus(sinks...), finish, nil
}

func runScenario(emit renderer, path, traceOut string, tel telemetryOpts) error {
	spec, err := rrtcp.LoadScenarioFile(path)
	if err != nil {
		return err
	}
	bus, finish, err := telemetrySetup(tel)
	if err != nil {
		return err
	}
	spec.Telemetry = bus
	if tel.traceOut != "" {
		// The Chrome trace's counter tracks come from sampled gauges;
		// scenarios sample only when asked.
		spec.SampleEvery = 10 * time.Millisecond
	}
	var rep *rrtcp.ScenarioReport
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			finish()
			return err
		}
		rep, err = spec.RunWithTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if ferr := finish(); err == nil {
			err = ferr
		}
		if err != nil {
			return err
		}
	} else {
		rep, err = spec.Run()
		if ferr := finish(); err == nil {
			err = ferr
		}
		if err != nil {
			return err
		}
	}
	return emit(rep.RenderText(), rep)
}

func runChaosReplay(path string) error {
	b, err := rrtcp.LoadChaosBundle(path)
	if err != nil {
		return err
	}
	out, err := rrtcp.ReplayChaosBundle(b)
	if err != nil {
		return err
	}
	fmt.Printf("bundle %s reproduced:\n  case: %s seed=%d\n  violation: %s\n  (%d violations total, finished=%v)\n",
		path, b.Case.Variant, b.Case.Seed, out.Violations[0], len(out.Violations), out.Finished)
	return nil
}
