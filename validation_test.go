package rrtcp_test

// Validation tests: the simulator's behaviour checked against
// closed-form transport arithmetic, so the reproduction's substrate is
// trustworthy before any algorithm comparison happens on top of it.

import (
	"math"
	"testing"
	"time"

	"rrtcp"
)

// paper Table 3 one-way latency components, in seconds.
const (
	dataTx1000AtSide       = 1000 * 8 / 10e6  // 0.8 ms
	dataTx1000AtBottleneck = 1000 * 8 / 0.8e6 // 10 ms
	ackTx40AtSide          = 40 * 8 / 10e6
	ackTx40AtBottleneck    = 40 * 8 / 0.8e6
	sideProp               = 0.001
	bottleneckProp         = 0.050
)

// baseRTT is the no-queueing round trip of a 1000-byte data packet and
// its 40-byte ACK across the Table 3 dumbbell (store-and-forward at
// each of the three hops in both directions).
func baseRTT() float64 {
	fwd := 2*(dataTx1000AtSide+sideProp) + dataTx1000AtBottleneck + bottleneckProp
	rev := 2*(ackTx40AtSide+sideProp) + ackTx40AtBottleneck + bottleneckProp
	return fwd + rev
}

// TestWindowLimitedThroughput pins the fundamental identity
// throughput = window / RTT for a flow whose window is below the BDP:
// no queueing, so the RTT is the propagation+transmission constant.
func TestWindowLimitedThroughput(t *testing.T) {
	const window = 5
	sched := rrtcp.NewScheduler(1)
	d, err := rrtcp.NewDumbbell(sched, rrtcp.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	flow, err := rrtcp.InstallFlow(sched, d, 0, rrtcp.FlowSpec{
		Kind:   rrtcp.NewReno,
		Bytes:  rrtcp.Infinite,
		Window: window,
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	sched.Run(60 * time.Second)

	got := flow.Trace.GoodputBps(10*time.Second, 60*time.Second)
	want := window * 1000 * 8 / baseRTT()
	if ratio := got / want; ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("throughput %f, analytic %f (ratio %f)", got, want, ratio)
	}
	if d.BottleneckQueue().Drops != 0 {
		t.Fatalf("window below BDP must not drop (got %d)", d.BottleneckQueue().Drops)
	}
}

// TestBottleneckLimitedThroughput pins the saturation case: a window
// equal to BDP+buffer keeps the 0.8 Mbps link fully busy without drops.
func TestBottleneckLimitedThroughput(t *testing.T) {
	sched := rrtcp.NewScheduler(1)
	d, err := rrtcp.NewDumbbell(sched, rrtcp.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	// BDP ≈ baseRTT * 100 pkt/s ≈ 12 packets; +8 buffer ≈ 18-19 max.
	flow, err := rrtcp.InstallFlow(sched, d, 0, rrtcp.FlowSpec{
		Kind:            rrtcp.NewReno,
		Bytes:           rrtcp.Infinite,
		Window:          18,
		InitialSSThresh: 9,
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	sched.Run(60 * time.Second)

	got := flow.Trace.GoodputBps(10*time.Second, 60*time.Second)
	if ratio := got / 0.8e6; ratio < 0.97 || ratio > 1.001 {
		t.Fatalf("saturated goodput %f, want ~0.8 Mbps (ratio %f)", got, ratio)
	}
	if d.BottleneckQueue().Drops != 0 {
		t.Fatalf("window within pipe capacity must not drop (got %d)", d.BottleneckQueue().Drops)
	}
}

// TestQueueingDelayShowsInRTT pins Little's-law-style queueing: with a
// window w above the BDP, the standing queue is w−BDP packets, each
// adding one bottleneck service time (10 ms) to the RTT.
func TestQueueingDelayShowsInRTT(t *testing.T) {
	const window = 16
	sched := rrtcp.NewScheduler(1)
	d, err := rrtcp.NewDumbbell(sched, rrtcp.PaperDropTailConfig(1))
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	flow, err := rrtcp.InstallFlow(sched, d, 0, rrtcp.FlowSpec{
		Kind:            rrtcp.NewReno,
		Bytes:           rrtcp.Infinite,
		Window:          window,
		InitialSSThresh: 8,
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	sched.Run(60 * time.Second)

	// Little's law at saturation: all w packets are either queued or in
	// service at the 100 pkt/s bottleneck, so RTT = w/μ = w × 10 ms.
	want := window * dataTx1000AtBottleneck
	got := flow.Sender.SRTT()
	if ratio := got / want; ratio < 0.95 || ratio > 1.08 {
		t.Fatalf("srtt %f, Little's law %f (ratio %f)", got, want, ratio)
	}
}

// TestTwoFlowSharing pins the paper's own §3.3 observation about the
// two gateway families: drop-tail "arbitrarily distributes packet
// losses among TCP connections" (no fairness guarantee, but no
// starvation and full utilization), while RED "minimizes the bias" —
// under RED the same two flows must split the link nearly evenly.
func TestTwoFlowSharing(t *testing.T) {
	run := func(red bool) (float64, float64) {
		sched := rrtcp.NewScheduler(1)
		cfg := rrtcp.PaperDropTailConfig(2)
		if red {
			cfg.ForwardQueue = rrtcp.Must(rrtcp.NewREDQueue(sched, rrtcp.PaperREDConfig()))
		}
		d, err := rrtcp.NewDumbbell(sched, cfg)
		if err != nil {
			t.Fatalf("dumbbell: %v", err)
		}
		flows, err := rrtcp.InstallFlows(sched, d, []rrtcp.FlowSpec{
			{Kind: rrtcp.RR, Bytes: rrtcp.Infinite, Window: 18},
			{Kind: rrtcp.RR, Bytes: rrtcp.Infinite, Window: 18, StartAt: 37 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("install: %v", err)
		}
		sched.Run(120 * time.Second)
		return flows[0].Trace.GoodputBps(20*time.Second, 120*time.Second),
			flows[1].Trace.GoodputBps(20*time.Second, 120*time.Second)
	}

	// Drop-tail: both flows alive and the link near capacity; sharing
	// may be arbitrarily skewed by phase effects (the paper's point).
	a, b := run(false)
	if a <= 0 || b <= 0 {
		t.Fatalf("drop-tail starved a flow: %f / %f", a, b)
	}
	if sum := (a + b) / 0.8e6; sum < 0.9 {
		t.Fatalf("drop-tail aggregate %f of capacity, want ≥0.9", sum)
	}

	// RED: random drops break the phase locking; shares within 30%.
	a, b = run(true)
	ratio := a / b
	if ratio < 0.70 || ratio > 1.43 {
		t.Fatalf("RED split still biased: %f vs %f (ratio %f)", a, b, ratio)
	}
}

// TestLossRateMatchesConfigured pins the loss injector arithmetic end
// to end: the retransmission count of a long SACK transfer under p=2%
// uniform loss lands near 2% of transmissions.
func TestLossRateMatchesConfigured(t *testing.T) {
	sched := rrtcp.NewScheduler(5)
	loss := rrtcp.NewUniformLoss(sched, 0.02)
	cfg := rrtcp.DumbbellConfig{
		Flows:           1,
		BottleneckBps:   10e6,
		BottleneckDelay: 20 * time.Millisecond,
		SideBps:         100e6,
		SideDelay:       time.Millisecond,
		ForwardQueue:    rrtcp.Must(rrtcp.NewDropTailQueue(sched, 1000)),
		Loss:            loss,
	}
	d, err := rrtcp.NewDumbbell(sched, cfg)
	if err != nil {
		t.Fatalf("dumbbell: %v", err)
	}
	flow, err := rrtcp.InstallFlow(sched, d, 0, rrtcp.FlowSpec{
		Kind: rrtcp.SACK, Bytes: rrtcp.Infinite, Window: 64,
	})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	sched.Run(120 * time.Second)
	measured := flow.Trace.LossRate()
	if math.Abs(measured-0.02) > 0.01 {
		t.Fatalf("measured loss rate %f, configured 0.02", measured)
	}
}
