// Simulation-engine surface of the rrtcp facade: the deterministic
// scheduler, simulated time, and the reusable-timer scheduling API.
package rrtcp

import (
	"rrtcp/internal/sim"
)

// --- simulation engine ---

// Scheduler is the deterministic discrete-event engine driving a run.
type Scheduler = sim.Scheduler

// Time is a simulated instant (an offset from the simulation epoch).
type Time = sim.Time

// NewScheduler returns an engine with the clock at zero and all
// randomness derived from seed.
func NewScheduler(seed int64) *Scheduler { return sim.NewScheduler(seed) }

// Timer is a restartable one-shot timer bound to a scheduler — the
// preferred way to schedule work. Create one per long-lived event
// source with Scheduler.NewTimer(handler) and re-arm it with
// Timer.At/Reset; arming allocates nothing. The closure-based
// Scheduler.Schedule/At calls remain as deprecated shims.
type Timer = sim.Timer

// ErrScheduleInPast is returned when an event (or timer) is armed
// before the current simulated time.
var ErrScheduleInPast = sim.ErrScheduleInPast

// SimCounters reports the process-wide simulator totals: discrete
// events processed and packets transmitted across every scheduler.
func SimCounters() (events, packets uint64) { return sim.GlobalCounters() }
