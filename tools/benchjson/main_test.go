package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: rrtcp/internal/telemetry
cpu: Fake CPU @ 2.40GHz
BenchmarkNDJSONEmit-8   	16428披	bad line that must not parse
BenchmarkNDJSONEmit-8   	16428000	        71.25 ns/op	       0 B/op	       0 allocs/op
BenchmarkRingEventsOf-8 	  512431	      2210 ns/op	    4096 B/op	       1 allocs/op
BenchmarkFigure5NullSink-8	     100	  11520042 ns/op
PASS
ok  	rrtcp/internal/telemetry	4.812s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleBenchOutput), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var got map[string]result
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	ndjson, ok := got["BenchmarkNDJSONEmit-8"]
	if !ok {
		t.Fatalf("missing BenchmarkNDJSONEmit-8 in %v", got)
	}
	if ndjson.NsPerOp != 71.25 || ndjson.AllocsPerOp != 0 || ndjson.Iterations != 16428000 {
		t.Errorf("BenchmarkNDJSONEmit-8 = %+v, want ns/op 71.25 allocs 0 iters 16428000", ndjson)
	}
	ring := got["BenchmarkRingEventsOf-8"]
	if ring.BytesPerOp != 4096 || ring.AllocsPerOp != 1 {
		t.Errorf("BenchmarkRingEventsOf-8 = %+v, want 4096 B/op 1 allocs/op", ring)
	}
	// -benchmem omitted: memory fields default to zero, ns/op still required.
	bare := got["BenchmarkFigure5NullSink-8"]
	if bare.NsPerOp != 11520042 || bare.BytesPerOp != 0 {
		t.Errorf("BenchmarkFigure5NullSink-8 = %+v, want ns/op 11520042, zero memory fields", bare)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	line := "BenchmarkEventsPerSec-8  	       3	 414023279 ns/op	         2.1 allocs/event	   2571245 events/sec	  965432 B/op	   20723 allocs/op"
	name, res, ok := parseLine(line)
	if !ok || name != "BenchmarkEventsPerSec-8" {
		t.Fatalf("parseLine = %q, %v, %v", name, res, ok)
	}
	if res.NsPerOp != 414023279 || res.BytesPerOp != 965432 || res.AllocsPerOp != 20723 {
		t.Errorf("standard fields wrong: %+v", res)
	}
	if res.Metrics["events/sec"] != 2571245 || res.Metrics["allocs/event"] != 2.1 {
		t.Errorf("custom metrics wrong: %+v", res.Metrics)
	}
	if len(res.Metrics) != 2 {
		t.Errorf("Metrics has %d entries, want 2: %v", len(res.Metrics), res.Metrics)
	}
}

func TestParseLineWorkingSetMetrics(t *testing.T) {
	// The headline benchmarks also publish engine working-set figures
	// (heap depth high-water, packet-pool hit rate); they must survive
	// the trip into BENCH_core.json like any other custom unit.
	line := "BenchmarkEventsPerSec-8  	      20	   1068618 ns/op	         0.14 allocs/event	   6837804 events/sec	        30.00 heap-highwater	         0.97 pool-hit-ratio	  278706 B/op	    1072 allocs/op"
	_, res, ok := parseLine(line)
	if !ok {
		t.Fatal("parseLine rejected headline output")
	}
	if res.Metrics["heap-highwater"] != 30 || res.Metrics["pool-hit-ratio"] != 0.97 {
		t.Errorf("working-set metrics wrong: %+v", res.Metrics)
	}
	if len(res.Metrics) != 4 {
		t.Errorf("Metrics has %d entries, want 4: %v", len(res.Metrics), res.Metrics)
	}
}

func TestMetricsOmittedWhenAbsent(t *testing.T) {
	_, res, ok := parseLine("BenchmarkX-8 100 71 ns/op")
	if !ok || res.Metrics != nil {
		t.Errorf("plain line grew a Metrics map: %+v ok=%v", res, ok)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	err := run(strings.NewReader("PASS\nok  	pkg	0.1s\n"), &out)
	if err == nil {
		t.Fatal("run accepted input with no benchmark lines")
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"BenchmarkX-8",
		"BenchmarkX-8 notanumber 71 ns/op",
		"BenchmarkX-8 100 71 s/op", // no ns/op pair at all
		"NotABench-8 100 71 ns/op",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
