// Command benchjson converts `go test -bench` output on stdin into a
// JSON object on stdout mapping benchmark name to its measurements:
//
//	go test -bench . -benchmem ./internal/telemetry/ | go run ./tools/benchjson > bench.json
//
//	{
//	  "BenchmarkNDJSONEmit-8": {"ns_per_op": 71.2, "allocs_per_op": 0, "bytes_per_op": 0},
//	  ...
//	}
//
// Lines that are not benchmark results (PASS, ok, warm-up chatter) are
// ignored. The command exits non-zero if no benchmark lines were found,
// so a CI job cannot silently upload an empty artifact.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result holds one benchmark line's measurements. Memory fields are
// zero when the input was produced without -benchmem. Custom units
// reported via b.ReportMetric (events/sec, allocs/event, rr-Kbps, ...)
// land in Metrics keyed by their unit string.
type result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Iterations  int64              `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	results := map[string]result{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the stream so the raw log stays visible in CI output.
		fmt.Fprintln(os.Stderr, line)
		name, res, ok := parseLine(line)
		if ok {
			results[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	// encoding/json emits map keys in sorted order, so the artifact is
	// deterministic for identical input.
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseLine decodes one `go test -bench` result line:
//
//	BenchmarkName-8   123456   71.2 ns/op   16 B/op   1 allocs/op
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	res := result{Iterations: iters, NsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	if res.NsPerOp < 0 {
		return "", result{}, false
	}
	return fields[0], res, true
}
