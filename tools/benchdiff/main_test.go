package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeJSON drops a benchjson-format file into the test's temp dir.
func writeJSON(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `{
  "BenchmarkEventsPerSec-8": {
    "ns_per_op": 400000000,
    "iterations": 3,
    "metrics": {"events/sec": 2500000, "allocs/event": 2.8, "heap-highwater": 30}
  },
  "BenchmarkPacketsPerSec-8": {
    "ns_per_op": 500000000,
    "iterations": 3,
    "metrics": {"packets/sec": 1200000}
  }
}`

func runDiff(t *testing.T, oldJSON, newJSON string, threshold float64, warn bool) (int, string) {
	t.Helper()
	var out strings.Builder
	code, err := run(&out,
		writeJSON(t, "old.json", oldJSON),
		writeJSON(t, "new.json", newJSON),
		threshold, warn)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return code, out.String()
}

func TestIdenticalFilesPass(t *testing.T) {
	code, out := runDiff(t, baseline, baseline, 0.10, false)
	if code != 0 {
		t.Fatalf("identical files exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "OK: no gating metric regressed") {
		t.Errorf("missing OK verdict:\n%s", out)
	}
}

// The acceptance criterion: an injected >=20% regression must exit
// non-zero at the default 10% threshold. Here events/sec drops 24%
// and ns/op rises 25%.
func TestInjectedRegressionFails(t *testing.T) {
	regressed := `{
  "BenchmarkEventsPerSec-8": {
    "ns_per_op": 500000000,
    "iterations": 3,
    "metrics": {"events/sec": 1900000, "allocs/event": 2.8}
  },
  "BenchmarkPacketsPerSec-8": {
    "ns_per_op": 500000000,
    "iterations": 3,
    "metrics": {"packets/sec": 1200000}
  }
}`
	code, out := runDiff(t, baseline, regressed, 0.10, false)
	if code != 1 {
		t.Fatalf("regression exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "FAIL: 2 gating metric(s)") {
		t.Errorf("verdict lines wrong:\n%s", out)
	}
}

func TestWarnModeExitsZero(t *testing.T) {
	regressed := strings.Replace(baseline, `"events/sec": 2500000`, `"events/sec": 1000000`, 1)
	code, out := runDiff(t, baseline, regressed, 0.10, true)
	if code != 0 {
		t.Fatalf("-warn exited %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "WARN: 1 gating metric(s)") {
		t.Errorf("missing WARN verdict:\n%s", out)
	}
}

func TestImprovementAndContextMetricsDoNotGate(t *testing.T) {
	// ns/op halves, throughput doubles, and the context-only
	// heap-highwater metric "worsens" 10x — still a clean exit.
	improved := `{
  "BenchmarkEventsPerSec-8": {
    "ns_per_op": 200000000,
    "iterations": 6,
    "metrics": {"events/sec": 5000000, "allocs/event": 2.8, "heap-highwater": 300}
  },
  "BenchmarkPacketsPerSec-8": {
    "ns_per_op": 500000000,
    "iterations": 3,
    "metrics": {"packets/sec": 1200000}
  }
}`
	code, out := runDiff(t, baseline, improved, 0.10, false)
	if code != 0 {
		t.Fatalf("improvement exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "improved") || !strings.Contains(out, "(info)") {
		t.Errorf("missing improved/(info) verdicts:\n%s", out)
	}
}

func TestAllocsPerEventRegressionFails(t *testing.T) {
	// allocs/event is lower-is-better and gates: a 10x jump fails even
	// with every other number flat.
	worse := `{
  "BenchmarkEventsPerSec-8": {
    "ns_per_op": 400000000,
    "iterations": 3,
    "metrics": {"events/sec": 2500000, "allocs/event": 28}
  },
  "BenchmarkPacketsPerSec-8": {
    "ns_per_op": 500000000,
    "iterations": 3,
    "metrics": {"packets/sec": 1200000}
  }
}`
	code, out := runDiff(t, baseline, worse, 0.10, false)
	if code != 1 {
		t.Fatalf("allocs/event regression exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("missing REGRESSION verdict:\n%s", out)
	}
}

func TestDisjointBenchmarksListedNotGated(t *testing.T) {
	newOnly := `{
  "BenchmarkEventsPerSec-8": {
    "ns_per_op": 400000000,
    "iterations": 3,
    "metrics": {"events/sec": 2500000}
  },
  "BenchmarkBrandNew-8": {"ns_per_op": 1, "iterations": 1}
}`
	code, out := runDiff(t, baseline, newOnly, 0.10, false)
	if code != 0 {
		t.Fatalf("disjoint sets exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "BenchmarkPacketsPerSec-8") || !strings.Contains(out, "only in old file") {
		t.Errorf("missing only-in-old listing:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkBrandNew-8") || !strings.Contains(out, "only in new file") {
		t.Errorf("missing only-in-new listing:\n%s", out)
	}
}

func TestThresholdBoundary(t *testing.T) {
	// Exactly at the threshold is tolerated; just past it is not.
	at := strings.Replace(baseline, `"ns_per_op": 400000000,
    "iterations": 3,
    "metrics": {"events/sec": 2500000`, `"ns_per_op": 440000000,
    "iterations": 3,
    "metrics": {"events/sec": 2500000`, 1)
	if code, out := runDiff(t, baseline, at, 0.10, false); code != 0 {
		t.Errorf("10%% slowdown at 10%% threshold exited %d:\n%s", code, out)
	}
	past := strings.Replace(at, "440000000", "441000000", 1)
	if code, out := runDiff(t, baseline, past, 0.10, false); code != 1 {
		t.Errorf("10.25%% slowdown at 10%% threshold exited %d:\n%s", code, out)
	}
}

func TestBadInputErrors(t *testing.T) {
	for name, content := range map[string]string{
		"not-json": "hello",
		"empty":    "{}",
	} {
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			_, err := run(&out, writeJSON(t, "old.json", content), writeJSON(t, "new.json", baseline), 0.10, false)
			if err == nil {
				t.Errorf("accepted %s old file", name)
			}
		})
	}
	var out strings.Builder
	if _, err := run(&out, filepath.Join(t.TempDir(), "missing.json"), writeJSON(t, "new.json", baseline), 0.10, false); err == nil {
		t.Error("accepted missing old file")
	}
}

func TestMkRowZeroHandling(t *testing.T) {
	if r := mkRow("b", "ns/op", 0, 0, false, true, 0.1); r.Delta != 0 || r.Regression {
		t.Errorf("0->0 row = %+v", r)
	}
	if r := mkRow("b", "ns/op", 0, 50, false, true, 0.1); !r.Regression {
		t.Errorf("0->50 should regress: %+v", r)
	}
}
