// Command benchdiff compares two benchmark JSON files produced by
// tools/benchjson and fails when performance regressed:
//
//	go run ./tools/benchdiff [-threshold 0.10] [-warn] old.json new.json
//
// For every benchmark present in both files it prints a delta table
// covering ns/op and each custom metric. Two families of numbers gate
// the exit status:
//
//   - ns_per_op — lower is better; a relative increase beyond the
//     threshold is a regression.
//   - custom metrics whose unit ends in "/sec" (events/sec,
//     packets/sec) — higher is better; a relative decrease beyond the
//     threshold is a regression.
//   - custom metrics whose unit ends in "/event" (allocs/event) —
//     lower is better; a relative increase beyond the threshold is a
//     regression.
//
// Other custom metrics (rr-Kbps, transfer-s, heap-highwater,
// pool-hit-ratio) are shown for context but never gate, since their
// polarity is benchmark-specific. Benchmarks present in only one file are listed but do not
// gate either, so adding or retiring a benchmark never breaks the
// comparison. With -warn the table and verdict still print but the
// exit status stays zero — the soft mode CI uses while a number
// stabilizes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// result mirrors the benchjson output shape.
type result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Iterations  int64              `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics"`
}

// row is one rendered comparison line.
type row struct {
	Bench      string
	Metric     string
	Old, New   float64
	Delta      float64 // relative change, sign normalized so >0 = worse
	Gates      bool    // whether this metric can fail the comparison
	Regression bool
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative regression tolerance (0.10 = 10%)")
	warn := flag.Bool("warn", false, "report regressions but exit zero")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-warn] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	code, err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *warn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func load(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m map[string]result
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return m, nil
}

// run executes the comparison, returning the process exit code: 0 when
// clean (or -warn), 1 when a gating metric regressed past threshold.
func run(w io.Writer, oldPath, newPath string, threshold float64, warn bool) (int, error) {
	oldRes, err := load(oldPath)
	if err != nil {
		return 0, err
	}
	newRes, err := load(newPath)
	if err != nil {
		return 0, err
	}

	rows, onlyOld, onlyNew := diff(oldRes, newRes, threshold)
	render(w, rows, onlyOld, onlyNew, threshold)

	regressed := 0
	for _, r := range rows {
		if r.Regression {
			regressed++
		}
	}
	switch {
	case regressed == 0:
		fmt.Fprintf(w, "\nOK: no gating metric regressed beyond %.0f%%\n", threshold*100)
		return 0, nil
	case warn:
		fmt.Fprintf(w, "\nWARN: %d gating metric(s) regressed beyond %.0f%% (exit 0, -warn)\n",
			regressed, threshold*100)
		return 0, nil
	default:
		fmt.Fprintf(w, "\nFAIL: %d gating metric(s) regressed beyond %.0f%%\n", regressed, threshold*100)
		return 1, nil
	}
}

// diff builds the comparison rows for benchmarks common to both sides,
// plus the names unique to each.
func diff(oldRes, newRes map[string]result, threshold float64) (rows []row, onlyOld, onlyNew []string) {
	names := make([]string, 0, len(oldRes))
	for n := range oldRes {
		if _, ok := newRes[n]; ok {
			names = append(names, n)
		} else {
			onlyOld = append(onlyOld, n)
		}
	}
	for n := range newRes {
		if _, ok := oldRes[n]; !ok {
			onlyNew = append(onlyNew, n)
		}
	}
	sort.Strings(names)
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)

	for _, n := range names {
		o, nw := oldRes[n], newRes[n]
		// ns/op: lower is better; delta>0 means slower.
		rows = append(rows, mkRow(n, "ns/op", o.NsPerOp, nw.NsPerOp, false, true, threshold))
		units := make([]string, 0, len(o.Metrics))
		for u := range o.Metrics {
			if _, ok := nw.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			higherBetter := strings.HasSuffix(u, "/sec")
			lowerBetter := strings.HasSuffix(u, "/event")
			rows = append(rows, mkRow(n, u, o.Metrics[u], nw.Metrics[u], higherBetter, higherBetter || lowerBetter, threshold))
		}
	}
	return rows, onlyOld, onlyNew
}

// mkRow normalizes the delta so positive always means "worse" for
// gating metrics; for non-gating context metrics it is the raw relative
// change.
func mkRow(bench, metric string, o, n float64, higherBetter, gates bool, threshold float64) row {
	var delta float64
	switch {
	case o == 0 && n == 0:
		delta = 0
	case o == 0:
		delta = 1 // from zero to something: treat as 100%
	case higherBetter:
		delta = (o - n) / o
	default:
		delta = (n - o) / o
	}
	return row{
		Bench: bench, Metric: metric, Old: o, New: n,
		Delta: delta, Gates: gates,
		Regression: gates && delta > threshold,
	}
}

func render(w io.Writer, rows []row, onlyOld, onlyNew []string, threshold float64) {
	fmt.Fprintf(w, "%-44s %-14s %14s %14s %9s  %s\n",
		"benchmark", "metric", "old", "new", "delta", "verdict")
	for _, r := range rows {
		verdict := ""
		switch {
		case r.Regression:
			verdict = "REGRESSION"
		case !r.Gates:
			verdict = "(info)"
		case r.Delta < -threshold:
			verdict = "improved"
		}
		// The sign convention: positive delta = worse for gated metrics.
		fmt.Fprintf(w, "%-44s %-14s %14.4g %14.4g %8.1f%%  %s\n",
			r.Bench, r.Metric, r.Old, r.New, r.Delta*100, verdict)
	}
	for _, n := range onlyOld {
		fmt.Fprintf(w, "%-44s only in old file (retired?)\n", n)
	}
	for _, n := range onlyNew {
		fmt.Fprintf(w, "%-44s only in new file (added)\n", n)
	}
}
