module rrtcp

go 1.22
